package progress

import (
	"strings"
	"testing"
	"time"
)

func TestETA(t *testing.T) {
	cases := []struct {
		elapsed     time.Duration
		done, total int
		want        time.Duration
	}{
		{10 * time.Second, 10, 20, 10 * time.Second},
		{10 * time.Second, 10, 40, 30 * time.Second},
		{10 * time.Second, 0, 40, 0},  // no rate yet
		{10 * time.Second, 40, 40, 0}, // finished
		{10 * time.Second, 10, 0, 0},  // unknown total
	}
	for _, c := range cases {
		if got := ETA(c.elapsed, c.done, c.total); got != c.want {
			t.Errorf("ETA(%v, %d, %d) = %v, want %v", c.elapsed, c.done, c.total, got, c.want)
		}
	}
}

func TestLine(t *testing.T) {
	got := Line("sweep", 30, 120, 10*time.Second, 30*time.Second)
	want := "sweep 30/120 (25%) 10s eta 30s"
	if got != want {
		t.Errorf("Line = %q, want %q", got, want)
	}
	// No ETA once nothing remains; unknown totals render as "?".
	if got := Line("x", 5, 5, time.Second, 0); strings.Contains(got, "eta") {
		t.Errorf("finished line still shows an ETA: %q", got)
	}
	if got := Line("x", 5, 0, time.Second, 0); !strings.Contains(got, "(?)") {
		t.Errorf("unknown total not marked: %q", got)
	}
}

func TestReporterThrottlesAndResets(t *testing.T) {
	var out strings.Builder
	now := time.Unix(0, 0)
	r := New(&out, "t")
	r.now = func() time.Time { return now }

	r.Update(1, 10)
	if !strings.Contains(out.String(), "t 1/10") {
		t.Fatalf("first update not drawn: %q", out.String())
	}
	drawn := out.Len()
	r.Update(2, 10) // same instant: throttled
	if out.Len() != drawn {
		t.Errorf("update within the throttle window was drawn")
	}
	now = now.Add(time.Second)
	r.Update(3, 10)
	if !strings.Contains(out.String(), "t 3/10") {
		t.Errorf("throttle did not release after the period: %q", out.String())
	}
	// Completion always draws, even inside the throttle window.
	r.Update(10, 10)
	if !strings.Contains(out.String(), "t 10/10") {
		t.Errorf("final update was throttled away: %q", out.String())
	}
	r.Finish()
	if !strings.HasSuffix(out.String(), "\n") {
		t.Errorf("Finish did not terminate the line")
	}
	// A regressing done count restarts the rate clock (new phase).
	now = now.Add(time.Hour)
	r.Update(1, 4)
	if strings.Contains(lastLine(out.String()), "1h") {
		t.Errorf("rate clock not reset on new phase: %q", lastLine(out.String()))
	}
}

func TestNilReporterIsSafe(t *testing.T) {
	var r *Reporter
	r.Update(1, 2)
	r.SetLabel("x")
	r.Finish()
	r2 := New(nil, "x")
	r2.Update(1, 2)
	r2.Finish()
}

func lastLine(s string) string {
	parts := strings.Split(s, "\r")
	return parts[len(parts)-1]
}
